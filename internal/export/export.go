// Package export renders experiment results into plot-ready CSV, so
// the paper's figures can be regenerated with any plotting tool. Every
// writer emits a header row and uses plain decimal formatting — no
// locale surprises, no external dependencies.
package export

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ibis/internal/iosched"
	"ibis/internal/metrics"
)

// TimeSeriesCSV writes (time_s, value) rows for a binned series; the
// time column is the bin start.
func TimeSeriesCSV(w io.Writer, name string, ts *metrics.TimeSeries) error {
	if ts == nil {
		return fmt.Errorf("export: nil time series %q", name)
	}
	if _, err := fmt.Fprintf(w, "time_s,%s\n", sanitize(name)); err != nil {
		return err
	}
	width := ts.BinWidth()
	for i, rate := range ts.Rate() {
		if _, err := fmt.Fprintf(w, "%s,%s\n",
			ftoa(float64(i)*width), ftoa(rate)); err != nil {
			return err
		}
	}
	return nil
}

// MultiSeriesCSV writes several aligned series as one table:
// time_s,<name1>,<name2>,... Missing bins render as 0.
func MultiSeriesCSV(w io.Writer, names []string, series []*metrics.TimeSeries) error {
	if len(names) != len(series) || len(series) == 0 {
		return fmt.Errorf("export: %d names for %d series", len(names), len(series))
	}
	width := series[0].BinWidth()
	maxLen := 0
	rates := make([][]float64, len(series))
	for i, ts := range series {
		if ts == nil {
			return fmt.Errorf("export: nil series %q", names[i])
		}
		if ts.BinWidth() != width {
			return fmt.Errorf("export: bin width mismatch for %q", names[i])
		}
		rates[i] = ts.Rate()
		if len(rates[i]) > maxLen {
			maxLen = len(rates[i])
		}
	}
	cols := make([]string, 0, len(names)+1)
	cols = append(cols, "time_s")
	for _, n := range names {
		cols = append(cols, sanitize(n))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for row := 0; row < maxLen; row++ {
		out := make([]string, 0, len(series)+1)
		out = append(out, ftoa(float64(row)*width))
		for _, r := range rates {
			v := 0.0
			if row < len(r) {
				v = r[row]
			}
			out = append(out, ftoa(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(out, ",")); err != nil {
			return err
		}
	}
	return nil
}

// CDFCSV writes (value, cumulative_fraction) rows — the Figure 9 data.
func CDFCSV(w io.Writer, name string, d *metrics.Distribution) error {
	if d == nil {
		return fmt.Errorf("export: nil distribution %q", name)
	}
	if _, err := fmt.Fprintf(w, "%s,cumulative_fraction\n", sanitize(name)); err != nil {
		return err
	}
	values, fracs := d.CDF()
	for i := range values {
		if _, err := fmt.Fprintf(w, "%s,%s\n", ftoa(values[i]), ftoa(fracs[i])); err != nil {
			return err
		}
	}
	return nil
}

// DepthTraceCSV writes the SFQ(D2) controller trace — the Figure 7
// data: time, depth, observed latency (ms), reference latency (ms).
func DepthTraceCSV(w io.Writer, trace []iosched.TracePoint) error {
	if _, err := fmt.Fprintln(w, "time_s,depth,latency_ms,lref_ms,samples"); err != nil {
		return err
	}
	for _, p := range trace {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%s,%d\n",
			ftoa(p.Time), p.Depth, ftoa(p.Latency*1e3), ftoa(p.Lref*1e3), p.Samples); err != nil {
			return err
		}
	}
	return nil
}

// Table writes a generic labeled table: header row then one row per
// entry.
func Table(w io.Writer, header []string, rows [][]string) error {
	if len(header) == 0 {
		return fmt.Errorf("export: empty header")
	}
	if _, err := fmt.Fprintln(w, strings.Join(sanitizeAll(header), ",")); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("export: row %d has %d columns, header has %d", i, len(row), len(header))
		}
		if _, err := fmt.Fprintln(w, strings.Join(sanitizeAll(row), ",")); err != nil {
			return err
		}
	}
	return nil
}

// ftoa formats floats compactly without exponent notation for the
// magnitudes this simulator produces.
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// sanitize strips CSV-breaking characters from labels.
func sanitize(s string) string {
	s = strings.ReplaceAll(s, ",", "_")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

func sanitizeAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = sanitize(s)
	}
	return out
}
