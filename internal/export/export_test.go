package export

import (
	"strings"
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/metrics"
)

func TestTimeSeriesCSV(t *testing.T) {
	ts := metrics.NewTimeSeries(2)
	ts.Add(0, 10)
	ts.Add(3, 30)
	var b strings.Builder
	if err := TimeSeriesCSV(&b, "read,MB", ts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "time_s,read_MB" {
		t.Fatalf("header = %q (commas must be sanitized)", lines[0])
	}
	if lines[1] != "0,5" || lines[2] != "2,15" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestTimeSeriesCSVNil(t *testing.T) {
	if err := TimeSeriesCSV(&strings.Builder{}, "x", nil); err == nil {
		t.Fatal("nil series accepted")
	}
}

func TestMultiSeriesCSV(t *testing.T) {
	a := metrics.NewTimeSeries(1)
	a.Add(0, 1)
	a.Add(1, 2)
	b := metrics.NewTimeSeries(1)
	b.Add(0, 3)
	var out strings.Builder
	if err := MultiSeriesCSV(&out, []string{"a", "b"}, []*metrics.TimeSeries{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := []string{"time_s,a,b", "0,1,3", "1,2,0"}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestMultiSeriesCSVMismatch(t *testing.T) {
	a := metrics.NewTimeSeries(1)
	b := metrics.NewTimeSeries(2)
	if err := MultiSeriesCSV(&strings.Builder{}, []string{"a", "b"}, []*metrics.TimeSeries{a, b}); err == nil {
		t.Fatal("bin-width mismatch accepted")
	}
	if err := MultiSeriesCSV(&strings.Builder{}, []string{"a"}, []*metrics.TimeSeries{a, a}); err == nil {
		t.Fatal("name/series count mismatch accepted")
	}
}

func TestCDFCSV(t *testing.T) {
	d := metrics.NewDistribution()
	d.Add(2)
	d.Add(1)
	var b strings.Builder
	if err := CDFCSV(&b, "runtime_s", d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "runtime_s,cumulative_fraction" || lines[1] != "1,0.5" || lines[2] != "2,1" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestDepthTraceCSV(t *testing.T) {
	trace := []iosched.TracePoint{
		{Time: 1, Depth: 6, Latency: 0.1, Lref: 0.09, Samples: 42},
	}
	var b strings.Builder
	if err := DepthTraceCSV(&b, trace); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "time_s,depth,latency_ms,lref_ms,samples" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,6,100,90,42" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"config", "slowdown"}, [][]string{
		{"native", "1.07"},
		{"sfq(d2)", "0.08"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sfq(d2),0.08") {
		t.Fatalf("output = %q", b.String())
	}
}

func TestTableValidation(t *testing.T) {
	if err := Table(&strings.Builder{}, nil, nil); err == nil {
		t.Fatal("empty header accepted")
	}
	if err := Table(&strings.Builder{}, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}
