package scale

// Chaos-at-scale: a 200-node hollow cluster coordinating through
// broker.AsyncTransport while the fault injector runs a full broker
// outage, partitions individual clients, and drops/delays exchange
// messages. The run must stay audit-clean (the degrade observer marks
// the graceful fallback to local fairness during disconnection) and —
// because every per-message fault roll is a pure function of
// (client id, seq) — the completion digest must be bit-identical
// whether the fabric runs on 1, 4, or 8 workers.

import (
	"testing"

	"ibis/internal/faults"
)

func chaosConfig(workers int) Config {
	spec := faults.Spec{
		Seed:    99,
		Outages: []faults.Window{{Start: 3, End: 4.5}},
		Partitions: map[string][]faults.Window{
			"node7-hdfs":   {{Start: 5.5, End: 7}},
			"node42-hdfs":  {{Start: 5.5, End: 7}},
			"node133-hdfs": {{Start: 2, End: 8}},
		},
		DropProb:     0.10,
		RespDropProb: 0.05,
		DelayProb:    0.25,
		DelayMin:     0.01,
		DelayMax:     0.1,
	}
	return Config{
		Nodes:              200,
		Tenants:            400,
		AppsPerTenant:      1,
		Replicas:           3,
		Seed:               4242,
		Horizon:            10,
		Coordinate:         true,
		CoordinationPeriod: 0.5,
		Faults:             faults.New(spec),
		Audit:              true,
		AuditSampleEvery:   7,
		Workers:            workers,
	}
}

func TestScaleChaos(t *testing.T) {
	base, err := Run(chaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st := base.Stats
	if st.Submitted == 0 || st.Completed != st.Submitted {
		t.Fatalf("submitted=%d completed=%d", st.Submitted, st.Completed)
	}
	if base.AuditErr != nil {
		t.Fatalf("audit under faults: %v (%d violations)", base.AuditErr, base.Violations)
	}
	for _, w := range []int{4, 8} {
		rep, err := Run(chaosConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Digest != st.Digest {
			t.Fatalf("workers=%d digest %016x != serial %016x under faults", w, rep.Stats.Digest, st.Digest)
		}
		if rep.AuditErr != nil {
			t.Fatalf("workers=%d audit under faults: %v", w, rep.AuditErr)
		}
	}
}
