// Package scale is the kubemark/clusterloader2-style scale suite: it
// runs the existing simulator with hollow datanodes (one device + one
// interposed scheduler per node, slab-pooled requests, interned app
// IDs) and generated multi-tenant populations (thousands of tenants ×
// apps with weighted share trees and open-loop arrival processes), and
// measures the envelope real experiments cannot reach — millions of
// requests in flight across a thousand nodes — while keeping the two
// properties that make it a test harness rather than a demo:
//
//   - deterministic under sim.Fabric sharding: the completion-stream
//     digest is bit-identical for every worker count;
//   - audit-clean: proportional-share invariants hold at full scale.
//
// Every run reports fairness ratios alongside bytes-per-flow,
// bytes-per-node, events/sec and peak heap; the CI gates regress on
// those numbers via BENCH_*_scale.json.
package scale

import (
	"fmt"
	"math"
	"time"

	"ibis/internal/audit"
	"ibis/internal/cluster"
	"ibis/internal/faults"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/shares"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/workloads"
)

// Config describes one scale run. Zero fields take smoke-sized
// defaults; the CI gate overrides them to the 1000-node / 10k-tenant
// shape.
type Config struct {
	// Nodes is the hollow datanode count.
	Nodes int
	// Tenants × AppsPerTenant apps are generated; each app runs on
	// Replicas nodes.
	Tenants       int
	AppsPerTenant int
	Replicas      int
	// Seed drives the population generator and every request-size draw.
	Seed uint64
	// Horizon is the submission window in virtual seconds; after it the
	// pumps stop and the run drains.
	Horizon float64
	// TickPeriod is the pump period (batching granularity of the
	// open-loop arrival process).
	TickPeriod float64
	// LoadFactor is the offered load relative to cluster capacity;
	// > 1 keeps every app continuously backlogged.
	LoadFactor float64
	// MeanRequestBytes sizes requests (log-range [0.5, 2) × mean).
	MeanRequestBytes float64
	// NodeBandwidth is the hollow device's flat service rate in
	// bytes/second.
	NodeBandwidth float64

	// Policy and Depth wire the per-node scheduler (default SFQ(D), 4).
	Policy cluster.Policy
	Depth  int
	// Coordinate enables the Scheduling Broker across the fabric;
	// CoordinationPeriod is its exchange period.
	Coordinate         bool
	CoordinationPeriod float64
	// Partitions > 1 federates the broker plane: that many partition
	// brokers on their own shards under a root aggregator, syncing
	// delta-compressed quanta every AggregationPeriod (≤ 0 takes the
	// coordination period). StalenessK bounds tolerated root-view age as
	// in cluster.Federation. Requires Coordinate.
	Partitions        int
	AggregationPeriod float64
	StalenessK        int
	// Faults, when non-nil, injects the fault schedule into the
	// coordination plane (the chaos configurations).
	Faults *faults.Injector

	// Audit attaches the invariant auditor to every AuditSampleEvery-th
	// node (1 = all nodes; sampling bounds the deferred log's memory at
	// the 1000-node shape).
	Audit            bool
	AuditSampleEvery int

	// Workers is the fabric's physical parallelism; Lookahead ≤ 0 takes
	// the cluster default.
	Workers   int
	Lookahead float64

	// NodeLookahead is the minimum virtual latency of messages leaving a
	// node shard (the heartbeat-piggybacked control uplink). A bound
	// looser than the base Lookahead widens the fabric's conservative
	// windows — fewer barriers, more parallel headroom — without
	// touching data-plane timing, which is node-local. ≤ 0 defaults to
	// min(TickPeriod, CoordinationPeriod/8); set it to Lookahead to
	// force uniform edges.
	NodeLookahead float64
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 16
	}
	if c.AppsPerTenant <= 0 {
		c.AppsPerTenant = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > c.Nodes {
		c.Replicas = c.Nodes
	}
	if c.Horizon <= 0 {
		c.Horizon = 10
	}
	if c.TickPeriod <= 0 {
		c.TickPeriod = 0.1
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.4
	}
	if c.MeanRequestBytes <= 0 {
		c.MeanRequestBytes = 1e6
	}
	if c.NodeBandwidth <= 0 {
		c.NodeBandwidth = 100e6
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	// Coordination requires SFQ schedulers: Native (the zero value)
	// builds FIFOs, which cannot attach broker clients, silently turning
	// a coordinated run into an uncoordinated one.
	if c.Coordinate && c.Policy == cluster.Native {
		c.Policy = cluster.SFQD
	}
	if c.CoordinationPeriod <= 0 {
		c.CoordinationPeriod = 1
	}
	if c.AuditSampleEvery <= 0 {
		c.AuditSampleEvery = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.NodeLookahead <= 0 {
		c.NodeLookahead = c.TickPeriod
		if la := c.CoordinationPeriod / 8; la < c.NodeLookahead {
			c.NodeLookahead = la
		}
	}
	base := c.Lookahead
	if base <= 0 {
		base = cluster.DefaultLookahead
	}
	if c.NodeLookahead < base {
		c.NodeLookahead = base
	}
}

// HollowSpec is the flat device model hollow nodes serve from: constant
// bandwidth, no concurrency curve, no per-op overhead — the simplest
// backend that still exercises full tag arithmetic and dispatch.
func HollowSpec(bw float64) storage.Spec {
	return storage.Spec{
		Name:       "hollow",
		ReadBW:     bw,
		WriteBW:    bw,
		Curve:      []float64{1},
		CurveDecay: 1,
		MinCurve:   1,
	}
}

// Report is the outcome of one scale run.
type Report struct {
	Stats      metrics.ScaleStats
	Population *workloads.Population
	// AuditErr is non-nil if any invariant was violated (nil when the
	// audit is off).
	AuditErr   error
	Violations int
	// AuditChecks counts evaluated invariant checks by name (nil when
	// the audit is off) — gates assert the intended regime actually ran.
	AuditChecks map[string]uint64
}

// resident is one app's open-loop arrival state on one node.
type resident struct {
	id     iosched.AppID
	weight float64 // effective weight, for fairness normalization
	rate   float64 // requests/second on this node
	credit float64
}

// nodeCell is the per-node, single-shard-owner state: the request
// pool, the arrival credits, and the completion counters. Only the
// node's own engine callbacks touch it during the run; the coordinator
// reads it after the fabric drains.
type nodeCell struct {
	node      *cluster.Node
	pool      *iosched.RequestPool
	rng       uint64
	residents []resident

	submitted uint64
	completed uint64
	bytes     float64
	digest    uint64
	series    []int // outstanding requests at each pump tick
	snapHalf  map[iosched.AppID]iosched.AppService
	snapFull  map[iosched.AppID]iosched.AppService
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unit(x uint64) float64 {
	return (float64(x>>11) + 0.5) / (1 << 53)
}

// Run executes one scale run and reports its envelope. The virtual
// timeline, completion stream, and digest are pure functions of cfg
// (Workers changes wall-clock only); events/sec, wall seconds and heap
// numbers are host-dependent.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	pop := workloads.Generate(workloads.PopulationConfig{
		Tenants:       cfg.Tenants,
		AppsPerTenant: cfg.AppsPerTenant,
		Seed:          cfg.Seed,
		Nodes:         cfg.Nodes,
		Replicas:      cfg.Replicas,
		LoadFactor:    cfg.LoadFactor,
	})
	tree := shares.NewTree()
	if err := pop.Bind(tree); err != nil {
		return nil, fmt.Errorf("scale: binding population: %w", err)
	}
	aggPeriod := cfg.AggregationPeriod
	if aggPeriod <= 0 {
		aggPeriod = cfg.CoordinationPeriod
	}
	fed := cluster.Federation{
		Partitions:        cfg.Partitions,
		AggregationPeriod: aggPeriod,
		StalenessK:        cfg.StalenessK,
	}
	cl, err := cluster.NewHollowSharded(cluster.Config{
		Nodes:              cfg.Nodes,
		HDFSDisk:           HollowSpec(cfg.NodeBandwidth),
		Policy:             cfg.Policy,
		SFQDepth:           cfg.Depth,
		Coordinate:         cfg.Coordinate,
		CoordinationPeriod: cfg.CoordinationPeriod,
		Federation:         fed,
		Faults:             cfg.Faults,
		Shares:             tree,
	}, cfg.Lookahead, sim.FabricOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	cl.SetNodeUplinkLatency(cfg.NodeLookahead)

	// Assign residents: app → its placement nodes, rate split evenly.
	nodeServiceRate := cfg.NodeBandwidth / cfg.MeanRequestBytes
	cells := make([]nodeCell, cfg.Nodes)
	for i := range cells {
		cells[i] = nodeCell{
			node:     cl.Nodes[i],
			pool:     iosched.NewRequestPool(0),
			rng:      splitmix64(cfg.Seed ^ (uint64(i) * 0x9e37)),
			digest:   fnvOffset,
			snapHalf: make(map[iosched.AppID]iosched.AppService),
			snapFull: make(map[iosched.AppID]iosched.AppService),
		}
	}
	for _, app := range pop.Apps() {
		perNode := pop.ArrivalRate(app, nodeServiceRate) / float64(len(app.Nodes))
		w, _ := tree.EffectiveWeight(app.ID, iosched.PersistentRead)
		for _, n := range app.Nodes {
			cells[n].residents = append(cells[n].residents, resident{
				id: app.ID, weight: w, rate: perNode,
			})
		}
	}

	// Audit wiring (sampled nodes only; the deferred log is replayed at
	// Finish on the coordinator).
	var auditor *audit.Auditor
	var deferred *audit.Deferred
	if cfg.Audit {
		auditor = audit.New(audit.Options{
			CoordinationPeriod:  cfg.CoordinationPeriod,
			FederationStaleness: fed.Staleness(),
		})
		deferred = audit.NewDeferred(auditor, cfg.Nodes+1)
		if cl.Broker != nil {
			auditor.AttachBroker(cl.Broker)
		}
		if root := cl.FederationRoot(); root != nil {
			// The root lives on the coordinator shard, so its probe is
			// single-owner; partition brokers run inside parallel windows
			// and are conservation-checked only at Finish.
			auditor.AttachAggregator(root)
			for _, p := range cl.Partitions() {
				auditor.AttachBrokerDeferred(p.Broker())
			}
		}
		cl.Instrument(func(node int, dev string, sched iosched.Scheduler) iosched.Probe {
			if node%cfg.AuditSampleEvery != 0 {
				return nil
			}
			return deferred.Probe(node+1, node, dev, sched)
		})
		if cfg.Coordinate {
			cl.SetDegradeObserver(
				func(node int, dev string, t float64) {
					if node%cfg.AuditSampleEvery == 0 {
						deferred.NoteDegradeStart(node+1, node, dev, t)
					}
				},
				func(node int, dev string, t float64) {
					if node%cfg.AuditSampleEvery == 0 {
						deferred.NoteDegradeEnd(node+1, node, dev, t)
					}
				})
		}
	}

	// Pumps: one self-rescheduling live event per node, submitting each
	// resident's accrued arrivals directly into the node's scheduler.
	// Everything the pump and the completion callbacks touch is owned by
	// the node's shard.
	for i := range cells {
		c := &cells[i]
		eng := cl.NodeEngine(i)
		sched := c.node.HDFSSched
		var step func()
		step = func() {
			c.series = append(c.series, c.pool.Outstanding())
			for ri := range c.residents {
				r := &c.residents[ri]
				r.credit += r.rate * cfg.TickPeriod
				for ; r.credit >= 1; r.credit-- {
					c.rng = splitmix64(c.rng)
					size := cfg.MeanRequestBytes * (0.5 + 1.5*unit(c.rng))
					req := c.pool.Get()
					req.App = r.id
					req.Shares = tree
					req.Class = iosched.PersistentRead
					req.Size = size
					req.OnDone = func(lat float64) {
						c.completed++
						c.bytes += req.Size
						d := fnvString(c.digest, string(req.App))
						d = fnvUint(d, math.Float64bits(req.Size))
						d = fnvUint(d, math.Float64bits(lat))
						d = fnvUint(d, math.Float64bits(eng.Now()))
						c.digest = d
						c.pool.Put(req)
					}
					if err := sched.Submit(req); err != nil {
						panic(fmt.Sprintf("scale: node %d rejected submit: %v", i, err))
					}
					c.submitted++
				}
			}
			if eng.Now()+cfg.TickPeriod < cfg.Horizon-1e-9 {
				eng.Schedule(cfg.TickPeriod, step)
			}
		}
		eng.Schedule(0, step)
		// Snapshot per-app service at the horizon midpoint and at the
		// horizon: fairness is measured over the second half, after the
		// startup transient has every queue deep. Post-drain totals are
		// vacuous (every submitted request completes), so fairness is
		// only meaningful mid-contention.
		acct := sched.Accounting()
		eng.ScheduleDaemon(cfg.Horizon/2, func() {
			for _, r := range c.residents {
				c.snapHalf[r.id] = acct.Service(r.id)
			}
		})
		eng.ScheduleDaemon(cfg.Horizon, func() {
			for _, r := range c.residents {
				c.snapFull[r.id] = acct.Service(r.id)
			}
		})
	}

	// Heap watermark: baseline after construction, sampled on the
	// coordinator each tick. Host-dependent by nature; never feeds the
	// digest.
	hw := metrics.NewHeapWatermark()
	coord := cl.Eng
	var sampleHeap func()
	sampleHeap = func() {
		hw.Sample()
		coord.ScheduleDaemon(cfg.TickPeriod, sampleHeap)
	}
	coord.ScheduleDaemon(cfg.TickPeriod, sampleHeap)

	wall0 := time.Now()
	cl.Fabric().Run()
	wall := time.Since(wall0).Seconds()
	hw.Sample()

	if deferred != nil {
		deferred.Finish()
	}

	// Merge cells in node order.
	rep := &Report{Population: pop}
	st := &rep.Stats
	st.Nodes, st.Tenants, st.Apps = cfg.Nodes, cfg.Tenants, pop.NumApps()
	digest := uint64(fnvOffset)
	ticks := 0
	for i := range cells {
		if len(cells[i].series) > ticks {
			ticks = len(cells[i].series)
		}
	}
	// SFQ(D) bounds |W_f/w_f - W_g/w_g| over an interval by roughly
	// D·maxcost per flow per endpoint (~2·D·maxcost per flow), so the
	// ratio is only meaningful for flows whose window service dominates
	// that bound: with a floor of 8·D·maxcost the per-flow error is
	// ≤ 25% and the pairwise ratio provably ≤ (1.25/0.75) ≈ 1.67 — the
	// same granularity guard the audit applies per window.
	minWindowCost := 8 * float64(cfg.Depth) * 2 * cfg.MeanRequestBytes
	worstRatio := 1.0
	for i := range cells {
		c := &cells[i]
		st.Submitted += c.submitted
		st.Completed += c.completed
		st.BytesServed += c.bytes
		digest = fnvUint(digest, c.digest)
		lo, hi := math.Inf(1), 0.0
		for _, r := range c.residents {
			window := c.snapFull[r.id].Cost - c.snapHalf[r.id].Cost
			if window < minWindowCost {
				continue
			}
			norm := window / r.weight
			if norm < lo {
				lo = norm
			}
			if norm > hi {
				hi = norm
			}
		}
		if hi > 0 && lo < math.Inf(1) && hi/lo > worstRatio {
			worstRatio = hi / lo
		}
	}
	for k := 0; k < ticks; k++ {
		inflight := 0
		for i := range cells {
			if k < len(cells[i].series) {
				inflight += cells[i].series[k]
			}
		}
		if inflight > st.PeakInFlight {
			st.PeakInFlight = inflight
		}
	}
	st.FairnessMaxRatio = worstRatio
	st.Digest = digest
	if parts := cl.Partitions(); len(parts) > 0 {
		fs := cl.FederationStats()
		st.Partitions = len(parts)
		st.FedSyncs = fs.Syncs
		st.FedSnapshots = fs.Snapshots
		st.FedUpBytes = fs.UpBytes
		st.FedDownBytes = fs.DownBytes
		st.BaselineBytes = cl.CentralizedBaselineBytes()
	}
	st.Events = cl.Fabric().Fired()
	ev, busy := cl.Fabric().Occupancy()
	st.ShardLoad = metrics.ShardStats{Events: ev, Busy: busy}
	st.WallSeconds = wall
	if wall > 0 {
		st.EventsPerSec = float64(st.Events) / wall
	}
	st.PeakHeapBytes = hw.Peak()
	if st.PeakInFlight > 0 {
		st.BytesPerFlow = float64(hw.Growth()) / float64(st.PeakInFlight)
	}
	st.BytesPerNode = float64(hw.Growth()) / float64(cfg.Nodes)

	if auditor != nil {
		rep.Violations = len(auditor.Violations())
		rep.AuditErr = auditor.Err()
		rep.AuditChecks = auditor.Checks()
	}
	if st.Completed != st.Submitted {
		return rep, fmt.Errorf("scale: %d of %d requests never completed", st.Submitted-st.Completed, st.Submitted)
	}
	return rep, nil
}
