package scale

import (
	"fmt"
	"testing"
)

// BenchmarkScaleGate1000 is the acceptance-criteria shape — 1000 hollow
// nodes, 10k tenants, >1M requests in flight — run at each worker
// count. The reported metrics are the envelope BENCH_*_scale.json
// records and CI gates on: events/sec (throughput), bytes/flow and
// peak-heap-MB (memory). Digest equality across the worker counts is
// asserted inline.
func BenchmarkScaleGate1000(b *testing.B) {
	var serial uint64
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Run(Config{
					Nodes:            1000,
					Tenants:          10000,
					AppsPerTenant:    1,
					Replicas:         3,
					Seed:             20260809,
					Horizon:          25,
					Workers:          workers,
					Audit:            true,
					AuditSampleEvery: 100,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.AuditErr != nil {
					b.Fatalf("audit: %v", rep.AuditErr)
				}
				st := rep.Stats
				if workers == 1 {
					serial = st.Digest
				} else if serial != 0 && st.Digest != serial {
					b.Fatalf("workers=%d digest %016x != serial %016x", workers, st.Digest, serial)
				}
				b.ReportMetric(st.EventsPerSec, "events/sec")
				b.ReportMetric(st.BytesPerFlow, "bytes/flow")
				b.ReportMetric(float64(st.PeakHeapBytes)/1e6, "peak-heap-MB")
				b.ReportMetric(float64(st.PeakInFlight), "peak-in-flight")
			}
		})
	}
}

// BenchmarkFederationGate1000 is the federated acceptance shape — the
// same 1000-node/10k-tenant population coordinated through 8 partition
// brokers and a root aggregator. The reported metrics are what
// BENCH_*_federation.json records and the CI federation-gate job
// budgets: federation bytes on the wire, the centralized-equivalent
// baseline those bytes replace, their ratio (compression-x, must stay
// >= 10), and bytes per sync period. Digest equality across worker
// counts is asserted inline.
func BenchmarkFederationGate1000(b *testing.B) {
	var serial uint64
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Run(Config{
					Nodes:            1000,
					Tenants:          10000,
					AppsPerTenant:    1,
					Replicas:         3,
					Seed:             20260809,
					Horizon:          25,
					Workers:          workers,
					Coordinate:       true,
					Partitions:       8,
					Audit:            true,
					AuditSampleEvery: 100,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.AuditErr != nil {
					b.Fatalf("audit: %v", rep.AuditErr)
				}
				st := rep.Stats
				if workers == 1 {
					serial = st.Digest
				} else if serial != 0 && st.Digest != serial {
					b.Fatalf("workers=%d digest %016x != serial %016x", workers, st.Digest, serial)
				}
				fedBytes := st.FedUpBytes + st.FedDownBytes
				b.ReportMetric(st.EventsPerSec, "events/sec")
				b.ReportMetric(float64(st.PeakInFlight), "peak-in-flight")
				b.ReportMetric(float64(fedBytes), "fed-bytes")
				b.ReportMetric(float64(st.BaselineBytes), "baseline-bytes")
				b.ReportMetric(st.FedCompression(), "compression-x")
				if st.FedSyncs > 0 {
					b.ReportMetric(float64(fedBytes)/float64(st.FedSyncs), "bytes/sync")
				}
			}
		})
	}
}
