package scale

import (
	"testing"

	"ibis/internal/cluster"
)

// smokeConfig is a small hollow population that still exercises every
// harness path: multi-replica placement, coordination, audit.
func smokeConfig(workers int) Config {
	return Config{
		Nodes:         8,
		Tenants:       24,
		AppsPerTenant: 2,
		Replicas:      3,
		Seed:          42,
		Horizon:       6,
		Workers:       workers,
		Audit:         true,
	}
}

func TestScaleSmoke(t *testing.T) {
	rep, err := Run(smokeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Submitted == 0 || st.Completed != st.Submitted {
		t.Fatalf("submitted=%d completed=%d", st.Submitted, st.Completed)
	}
	if st.PeakInFlight <= 0 {
		t.Fatalf("peak in flight = %d", st.PeakInFlight)
	}
	if rep.AuditErr != nil {
		t.Fatalf("audit: %v", rep.AuditErr)
	}
	if st.Events == 0 {
		t.Fatal("no events fired")
	}
}

func TestScaleFairness(t *testing.T) {
	// A population with few flows per node, each well above the
	// fairness-floor service, so the proportionality ratio is measured
	// rather than vacuous: every included flow's half-window service
	// dwarfs the SFQ(D) fairness bound.
	rep, err := Run(Config{
		Nodes:         8,
		Tenants:       12,
		AppsPerTenant: 1,
		Replicas:      3,
		Seed:          7,
		Horizon:       16,
		Workers:       2,
		Audit:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if rep.AuditErr != nil {
		t.Fatalf("audit: %v", rep.AuditErr)
	}
	if st.FairnessMaxRatio <= 1 {
		t.Fatalf("fairness ratio %.3f: no flow pair qualified, metric is vacuous", st.FairnessMaxRatio)
	}
	if st.FairnessMaxRatio > 2 {
		t.Fatalf("fairness max ratio %.3f too far from proportional", st.FairnessMaxRatio)
	}
}

func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	base, err := Run(smokeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		rep, err := Run(smokeConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Digest != base.Stats.Digest {
			t.Fatalf("workers=%d digest %016x != serial %016x", w, rep.Stats.Digest, base.Stats.Digest)
		}
		if rep.Stats.Submitted != base.Stats.Submitted || rep.Stats.PeakInFlight != base.Stats.PeakInFlight {
			t.Fatalf("workers=%d shape diverged: %+v vs %+v", w, rep.Stats, base.Stats)
		}
	}
}

func TestScaleCoordinated(t *testing.T) {
	cfg := smokeConfig(2)
	cfg.Coordinate = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AuditErr != nil {
		t.Fatalf("audit: %v", rep.AuditErr)
	}
	serial := smokeConfig(1)
	serial.Coordinate = true
	rep2, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Digest != rep2.Stats.Digest {
		t.Fatalf("coordinated digest differs across workers: %016x vs %016x",
			rep.Stats.Digest, rep2.Stats.Digest)
	}
}

func TestScalePolicies(t *testing.T) {
	// The harness must run every hollow-compatible policy, not just
	// SFQ(D).
	for _, p := range []cluster.Policy{cluster.Native, cluster.SFQD} {
		cfg := smokeConfig(1)
		cfg.Policy = p
		cfg.Audit = false
		cfg.Tenants = 8
		cfg.Horizon = 3
		if _, err := Run(cfg); err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
	}
}

// TestScaleGate is the acceptance-criteria run: 1000 hollow nodes, 10k
// tenants, ≥ 1M requests in flight, audit-clean, digest-identical
// across worker counts. Skipped under -short; CI runs it in the scale
// gate job.
func TestScaleGate(t *testing.T) {
	if testing.Short() {
		t.Skip("scale gate runs only in the full suite")
	}
	gate := func(workers int) Config {
		return Config{
			Nodes:            1000,
			Tenants:          10000,
			AppsPerTenant:    1,
			Replicas:         3,
			Seed:             20260809,
			Horizon:          25,
			Workers:          workers,
			Audit:            true,
			AuditSampleEvery: 100,
		}
	}
	base, err := Run(gate(1))
	if err != nil {
		t.Fatal(err)
	}
	st := base.Stats
	t.Logf("gate: submitted=%d peak-in-flight=%d fairness=%.3f events=%d wall=%.1fs heap=%.1fMB bytes/flow=%.0f",
		st.Submitted, st.PeakInFlight, st.FairnessMaxRatio, st.Events, st.WallSeconds,
		float64(st.PeakHeapBytes)/1e6, st.BytesPerFlow)
	if st.PeakInFlight < 1_000_000 {
		t.Fatalf("peak in flight %d < 1M: gate population too small", st.PeakInFlight)
	}
	if base.AuditErr != nil {
		t.Fatalf("audit: %v (%d violations)", base.AuditErr, base.Violations)
	}
	if st.FairnessMaxRatio > 2 {
		t.Fatalf("fairness max ratio %.3f at scale", st.FairnessMaxRatio)
	}
	for _, w := range []int{4, 8} {
		rep, err := Run(gate(w))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Digest != st.Digest {
			t.Fatalf("workers=%d digest %016x != serial %016x", w, rep.Stats.Digest, st.Digest)
		}
	}
}
