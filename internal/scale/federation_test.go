package scale

// Federated broker plane at scale: partition brokers on their own
// shards syncing delta-compressed service quanta through a root
// aggregator. The suite checks the three properties the federation
// claims: the fairness audit stays clean under the share-federated
// (staleness-widened) regime, the completion digest is bit-identical
// for every worker count, and the federation plane ships at least an
// order of magnitude fewer bytes per period than the centralized
// full-vector broker would for the same exchange traffic.

import (
	"testing"

	"ibis/internal/faults"
)

func fedConfig(workers, partitions int) Config {
	cfg := smokeConfig(workers)
	cfg.Coordinate = true
	cfg.Partitions = partitions
	return cfg
}

func TestFederationSmoke(t *testing.T) {
	rep, err := Run(fedConfig(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Submitted == 0 || st.Completed != st.Submitted {
		t.Fatalf("submitted=%d completed=%d", st.Submitted, st.Completed)
	}
	if rep.AuditErr != nil {
		t.Fatalf("audit: %v", rep.AuditErr)
	}
	if st.Partitions != 4 {
		t.Fatalf("partitions = %d, want 4", st.Partitions)
	}
	if st.FedSyncs == 0 || st.FedUpBytes == 0 || st.FedDownBytes == 0 {
		t.Fatalf("federation plane idle: %+v", st)
	}
	if st.FedSnapshots < uint64(st.Partitions) {
		t.Fatalf("fed-snapshots=%d: every partition's first uplink must be a snapshot", st.FedSnapshots)
	}
	if rep.AuditChecks["share-federated"] == 0 {
		t.Fatalf("share-federated regime never checked: %v", rep.AuditChecks)
	}
	if rep.AuditChecks["federation-conservation"] == 0 {
		t.Fatalf("federation-conservation never checked: %v", rep.AuditChecks)
	}
}

func TestFederationDeterministicAcrossWorkers(t *testing.T) {
	base, err := Run(fedConfig(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		rep, err := Run(fedConfig(w, 4))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Digest != base.Stats.Digest {
			t.Fatalf("workers=%d digest %016x != serial %016x", w, rep.Stats.Digest, base.Stats.Digest)
		}
		if rep.Stats.FedSyncs != base.Stats.FedSyncs ||
			rep.Stats.FedUpBytes != base.Stats.FedUpBytes ||
			rep.Stats.FedDownBytes != base.Stats.FedDownBytes {
			t.Fatalf("workers=%d federation plane diverged: %+v vs %+v", w, rep.Stats, base.Stats)
		}
	}
}

// fedChaosConfig is the federated analog of chaosConfig: 200 nodes in 4
// partitions, one partition leader killed mid-run, plus 10% message
// loss on the client legs.
func fedChaosConfig(workers int) Config {
	spec := faults.Spec{
		Seed:          77,
		LeaderOutages: map[int][]faults.Window{1: {{Start: 3, End: 4.5}}},
		DropProb:      0.10,
		RespDropProb:  0.05,
		DelayProb:     0.25,
		DelayMin:      0.01,
		DelayMax:      0.1,
	}
	return Config{
		Nodes:              200,
		Tenants:            400,
		AppsPerTenant:      1,
		Replicas:           3,
		Seed:               4242,
		Horizon:            10,
		Coordinate:         true,
		CoordinationPeriod: 0.5,
		Partitions:         4,
		Faults:             faults.New(spec),
		Audit:              true,
		AuditSampleEvery:   7,
		Workers:            workers,
	}
}

// TestFederationChaos kills partition 1's leader for 1.5 virtual
// seconds while 10% of client exchange messages drop. Clients of the
// dead partition must degrade to local SFQ(D) and recover (audited),
// the partition must resync by snapshot, and the whole run must stay
// digest-identical at 1, 4 and 8 workers.
func TestFederationChaos(t *testing.T) {
	base, err := Run(fedChaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st := base.Stats
	if st.Submitted == 0 || st.Completed != st.Submitted {
		t.Fatalf("submitted=%d completed=%d", st.Submitted, st.Completed)
	}
	if base.AuditErr != nil {
		t.Fatalf("audit under leader outage: %v (%d violations)", base.AuditErr, base.Violations)
	}
	// 4 initial snapshots plus at least one crash-recovery resync from
	// the killed leader.
	if st.FedSnapshots < 5 {
		t.Fatalf("fed-snapshots=%d: leader crash never forced a resync", st.FedSnapshots)
	}
	if base.AuditChecks["federation-conservation"] == 0 {
		t.Fatalf("federation-conservation never checked: %v", base.AuditChecks)
	}
	for _, w := range []int{4, 8} {
		rep, err := Run(fedChaosConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Digest != st.Digest {
			t.Fatalf("workers=%d digest %016x != serial %016x under leader outage", w, rep.Stats.Digest, st.Digest)
		}
		if rep.AuditErr != nil {
			t.Fatalf("workers=%d audit under leader outage: %v", w, rep.AuditErr)
		}
	}
}

// fedGateConfig is the acceptance shape: 1000 hollow nodes, 10k
// tenants, 8 partition brokers.
func fedGateConfig(workers int) Config {
	return Config{
		Nodes:            1000,
		Tenants:          10000,
		AppsPerTenant:    1,
		Replicas:         3,
		Seed:             20260809,
		Horizon:          25,
		Coordinate:       true,
		Partitions:       8,
		Workers:          workers,
		Audit:            true,
		AuditSampleEvery: 100,
	}
}

// TestFederationGate is the federated acceptance run: 1000 nodes / 10k
// tenants / 8 partitions, audit-clean under share-federated,
// digest-identical at 1, 4 and 8 workers, and the federation plane's
// bytes on the wire at least 10× below the centralized full-vector
// baseline. Skipped under -short; CI runs it in the federation gate.
func TestFederationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("federation gate runs only in the full suite")
	}
	base, err := Run(fedGateConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st := base.Stats
	t.Logf("fed gate: submitted=%d peak-in-flight=%d fairness=%.3f syncs=%d fed-bytes=%d baseline=%d compression=%.1fx wall=%.1fs",
		st.Submitted, st.PeakInFlight, st.FairnessMaxRatio, st.FedSyncs,
		st.FedUpBytes+st.FedDownBytes, st.BaselineBytes, st.FedCompression(), st.WallSeconds)
	if base.AuditErr != nil {
		t.Fatalf("audit: %v (%d violations)", base.AuditErr, base.Violations)
	}
	if base.AuditChecks["share-federated"] == 0 {
		t.Fatalf("share-federated regime never checked: %v", base.AuditChecks)
	}
	if st.PeakInFlight < 1_000_000 {
		t.Fatalf("peak in flight %d < 1M: gate population too small", st.PeakInFlight)
	}
	if st.FairnessMaxRatio > 2 {
		t.Fatalf("fairness max ratio %.3f at scale", st.FairnessMaxRatio)
	}
	if c := st.FedCompression(); c < 10 {
		t.Fatalf("federation plane compression %.1fx < 10x (fed=%d bytes, baseline=%d bytes)",
			c, st.FedUpBytes+st.FedDownBytes, st.BaselineBytes)
	}
	for _, w := range []int{4, 8} {
		rep, err := Run(fedGateConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Digest != st.Digest {
			t.Fatalf("workers=%d digest %016x != serial %016x", w, rep.Stats.Digest, st.Digest)
		}
	}
}
