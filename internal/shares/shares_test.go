package shares

import (
	"math"
	"testing"

	"ibis/internal/iosched"
)

// TestImplicitTenantIdentity pins the back-compat contract: an app that
// never touches the control plane resolves to exactly its flat weight,
// for every class, including values whose product would round if the
// multiplication were not by exactly 1.
func TestImplicitTenantIdentity(t *testing.T) {
	tr := NewTree()
	for _, w := range []float64{1, 3, 32, 0.1, 1e-3, 7.000000000000001} {
		app := iosched.AppID("a")
		if err := tr.Bind(app, "", w); err != nil {
			t.Fatal(err)
		}
		for c := iosched.Class(0); int(c) < iosched.NumClasses; c++ {
			got, _ := tr.EffectiveWeight(app, c)
			if got != w {
				t.Fatalf("EffectiveWeight(%g, %s) = %g, want bit-identical", w, c, got)
			}
		}
		if tr.TenantOf(app) != ImplicitTenant(app) {
			t.Fatalf("TenantOf = %q, want %q", tr.TenantOf(app), ImplicitTenant(app))
		}
		// Re-bind with the next weight in the loop.
		tr = NewTree()
	}
}

// TestEffectiveWeightProduct checks the path product and the class
// multiplier default.
func TestEffectiveWeightProduct(t *testing.T) {
	tr := NewTree()
	if err := tr.Tenant("analytics", 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Bind("etl", "analytics", 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetClassWeight("etl", iosched.IntermediateWrite, 0.5); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.EffectiveWeight("etl", iosched.PersistentRead); got != 12 {
		t.Fatalf("PersistentRead = %g, want 12 (3 x 4 x 1)", got)
	}
	if got, _ := tr.EffectiveWeight("etl", iosched.IntermediateWrite); got != 6 {
		t.Fatalf("IntermediateWrite = %g, want 6 (3 x 4 x 0.5)", got)
	}
	// Reweighting the tenant scales every member.
	if err := tr.Tenant("analytics", 6); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.EffectiveWeight("etl", iosched.PersistentRead); got != 24 {
		t.Fatalf("after tenant reweight = %g, want 24", got)
	}
}

// TestUnknownAppAutoBinds: resolving an app nobody declared must not
// fail — it is the back-compat path for raw requests.
func TestUnknownAppAutoBinds(t *testing.T) {
	tr := NewTree()
	w, epoch := tr.EffectiveWeight("ghost", iosched.PersistentRead)
	if w != 1 {
		t.Fatalf("unknown app weight = %g, want 1", w)
	}
	if epoch == 0 {
		t.Fatal("auto-bind did not bump the epoch")
	}
	if got := tr.TenantOf("ghost"); got != "~ghost" {
		t.Fatalf("TenantOf = %q, want ~ghost", got)
	}
}

// TestValidation: every public mutator rejects bad input with an error
// and leaves the tree untouched.
func TestValidation(t *testing.T) {
	tr := NewTree()
	cases := []func() error{
		func() error { return tr.Tenant("", 1) },
		func() error { return tr.Tenant("~x", 1) },
		func() error { return tr.Tenant("t", 0) },
		func() error { return tr.Tenant("t", -2) },
		func() error { return tr.Tenant("t", math.Inf(1)) },
		func() error { return tr.Tenant("t", math.NaN()) },
		func() error { return tr.Bind("", "t", 1) },
		func() error { return tr.Bind("a", "~t", 1) },
		func() error { return tr.Bind("a", "t", 0) },
		func() error { return tr.SetAppWeight("", 1) },
		func() error { return tr.SetAppWeight("a", -1) },
		func() error { return tr.SetClassWeight("a", iosched.Class(99), 1) },
		func() error { return tr.SetClassWeight("a", iosched.PersistentRead, 0) },
	}
	for i, fn := range cases {
		if err := fn(); err == nil {
			t.Errorf("case %d: invalid mutation accepted", i)
		}
	}
	if tr.Epoch() != 0 {
		t.Fatalf("rejected mutations bumped the epoch to %d", tr.Epoch())
	}
	if len(tr.Transitions()) != 0 {
		t.Fatalf("rejected mutations were logged: %v", tr.Transitions())
	}
}

// TestEpochAndTransitionLog: every accepted mutation bumps the epoch
// exactly once and lands in the log with the right kind; no-op
// mutations (same value) bump nothing.
func TestEpochAndTransitionLog(t *testing.T) {
	tr := NewTree()
	now := 7.5
	tr.SetClock(func() float64 { return now })

	steps := []struct {
		fn   func() error
		kind string
	}{
		{func() error { return tr.Tenant("t", 2) }, "tenant"},
		{func() error { return tr.Bind("a", "t", 4) }, "bind"},
		{func() error { return tr.SetAppWeight("a", 8) }, "app-weight"},
		{func() error { return tr.SetClassWeight("a", iosched.PersistentRead, 0.5) }, "class-weight"},
	}
	for i, st := range steps {
		if err := st.fn(); err != nil {
			t.Fatal(err)
		}
		if tr.Epoch() != uint64(i+1) {
			t.Fatalf("after step %d epoch = %d, want %d", i, tr.Epoch(), i+1)
		}
		log := tr.Transitions()
		last := log[len(log)-1]
		if last.Kind != st.kind || last.Epoch != uint64(i+1) || last.Time != now {
			t.Fatalf("step %d logged %+v, want kind %q epoch %d time %g", i, last, st.kind, i+1, now)
		}
	}
	// Idempotent repeats are silent.
	before := tr.Epoch()
	if err := tr.Tenant("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetAppWeight("a", 8); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetClassWeight("a", iosched.PersistentRead, 0.5); err != nil {
		t.Fatal(err)
	}
	if tr.Epoch() != before {
		t.Fatalf("no-op mutations bumped the epoch %d -> %d", before, tr.Epoch())
	}
}

// TestOnChangeFiresOnlyOnEffectiveChange: first binds and declarations
// must not fire (nothing to reconverge); changes to weights already in
// force must.
func TestOnChangeFiresOnlyOnEffectiveChange(t *testing.T) {
	tr := NewTree()
	var fired []Transition
	tr.OnChange(func(x Transition) { fired = append(fired, x) })

	if err := tr.Tenant("t", 2); err != nil { // declaration: no observer
		t.Fatal(err)
	}
	if err := tr.Bind("a", "t", 4); err != nil { // first bind: no observer
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("first bind/declare fired %d observers", len(fired))
	}
	if err := tr.SetAppWeight("a", 8); err != nil { // live change: fires
		t.Fatal(err)
	}
	if err := tr.Tenant("t", 5); err != nil { // tenant reweight: fires
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("effective changes fired %d observers, want 2", len(fired))
	}
	if fired[0].Kind != "app-weight" || fired[1].Kind != "tenant" {
		t.Fatalf("observer kinds %q/%q, want app-weight/tenant", fired[0].Kind, fired[1].Kind)
	}
}

// TestSetAppWeightPinsAgainstRebind: a control-plane reweight survives
// a framework re-Bind of the same app id (e.g. a multi-stage Hive
// query resubmitting), but the re-bind can still move the tenant.
func TestSetAppWeightPinsAgainstRebind(t *testing.T) {
	tr := NewTree()
	if err := tr.Bind("q1", "batch", 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetAppWeight("q1", 16); err != nil {
		t.Fatal(err)
	}
	if err := tr.Bind("q1", "batch", 2); err != nil { // stage resubmit
		t.Fatal(err)
	}
	if got := tr.AppWeight("q1"); got != 16 {
		t.Fatalf("rebind overrode pinned weight: %g, want 16", got)
	}
	if err := tr.Bind("q1", "interactive", 2); err != nil {
		t.Fatal(err)
	}
	if got := tr.TenantOf("q1"); got != "interactive" {
		t.Fatalf("rebind did not move tenant: %q", got)
	}
	if got := tr.AppWeight("q1"); got != 16 {
		t.Fatalf("tenant move overrode pinned weight: %g, want 16", got)
	}
}

// TestEnumerations covers the sorted accessors the broker iterates for
// deterministic aggregation.
func TestEnumerations(t *testing.T) {
	tr := NewTree()
	for _, b := range []struct {
		app    iosched.AppID
		tenant string
	}{{"c", "t2"}, {"a", "t1"}, {"b", "t1"}} {
		if err := tr.Bind(b.app, b.tenant, 1); err != nil {
			t.Fatal(err)
		}
	}
	apps := tr.Apps()
	if len(apps) != 3 || apps[0] != "a" || apps[1] != "b" || apps[2] != "c" {
		t.Fatalf("Apps = %v, want [a b c]", apps)
	}
	t1 := tr.AppsOf("t1")
	if len(t1) != 2 || t1[0] != "a" || t1[1] != "b" {
		t.Fatalf("AppsOf(t1) = %v, want [a b]", t1)
	}
	tenants := tr.Tenants()
	if len(tenants) != 2 || tenants[0] != "t1" || tenants[1] != "t2" {
		t.Fatalf("Tenants = %v, want [t1 t2]", tenants)
	}
	if w := tr.TenantWeight("t1"); w != 1 {
		t.Fatalf("auto-declared tenant weight = %g, want 1", w)
	}
	if w := tr.TenantWeight("missing"); w != 0 {
		t.Fatalf("unknown tenant weight = %g, want 0", w)
	}
	if w := tr.TenantWeight("~x"); w != 1 {
		t.Fatalf("implicit tenant weight = %g, want 1", w)
	}
}
