package shares

// Native fuzz target for share-tree mutations. The fuzzer decodes a
// byte stream into a sequence of control-plane operations — tenant
// declarations, binds, live reweights, class multipliers, including
// invalid weights and reserved names — and replays it against both the
// Tree and a flat shadow model. Invariants:
//
//   - the tree accepts exactly the operations the shadow model deems
//     valid (invalid weights and reserved "~" names error, never panic);
//   - the epoch is monotone and bumps exactly when observable state
//     changed (no-op mutations leave it untouched);
//   - EffectiveWeight is bit-identical to tenantWeight × appWeight ×
//     classMult from the shadow model, for every app and class;
//   - SetAppWeight pins an app's weight against later Bind overrides.
//
// Seeds mirror the curated reconfiguration tests: declare → bind →
// reweight → move, plus error-path streams.

import (
	"math"
	"testing"

	"ibis/internal/iosched"
)

// shadowApp mirrors appNode in the shadow model.
type shadowApp struct {
	tenant   string
	weight   float64
	class    [iosched.NumClasses]float64
	explicit bool
}

func FuzzShareTree(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x42, 0x23, 0x04, 0x35})
	f.Add([]byte{0xfc, 0xfd, 0xfe, 0xff, 0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{0x10, 0x51, 0x92, 0xd3, 0x14, 0x55, 0x96, 0xd7})
	f.Add([]byte{0x08, 0x49, 0x8a, 0xcb, 0x0c, 0x4d})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1024 {
			ops = ops[:1024]
		}
		tree := NewTree()
		tenants := map[string]float64{}
		apps := map[iosched.AppID]*shadowApp{}

		tenantNames := []string{"alpha", "beta", "gamma", "~res"}
		appIDs := []iosched.AppID{"app-a", "app-b", "app-c", "app-d"}
		weights := []float64{1, 2.5, 7, 0.125, 0, -3, math.NaN(), math.Inf(1)}

		// ensureShadow mirrors Tree.ensure: auto-bind at weight 1 under
		// the implicit singleton tenant.
		ensureShadow := func(app iosched.AppID) *shadowApp {
			sa := apps[app]
			if sa == nil {
				sa = &shadowApp{tenant: ImplicitTenant(app), weight: 1}
				for i := range sa.class {
					sa.class[i] = 1
				}
				if _, ok := tenants[sa.tenant]; !ok {
					tenants[sa.tenant] = 1
				}
				apps[app] = sa
			}
			return sa
		}

		lastEpoch := tree.Epoch()
		for _, b := range ops {
			op := b & 0x03
			name := tenantNames[(b>>2)&0x03]
			app := appIDs[(b>>4)&0x03]
			w := weights[(b>>5)&0x07]
			wantChange := false
			var wantErr bool
			switch op {
			case 0: // Tenant
				wantErr = name[0] == '~' || !validWeight(w)
				if !wantErr {
					old, ok := tenants[name]
					wantChange = !ok || old != w
					tenants[name] = w
				}
				err := tree.Tenant(name, w)
				if (err != nil) != wantErr {
					t.Fatalf("Tenant(%q, %v): err=%v, want error=%v", name, w, err, wantErr)
				}
			case 1: // Bind
				tname := name
				if b&0x80 != 0 {
					tname = "" // implicit singleton
				}
				wantErr = (tname != "" && tname[0] == '~') || !validWeight(w)
				if !wantErr {
					resolved := tname
					if resolved == "" {
						resolved = ImplicitTenant(app)
					}
					if _, ok := tenants[resolved]; !ok {
						tenants[resolved] = 1
					}
					sa := apps[app]
					if sa == nil {
						sa = &shadowApp{tenant: resolved, weight: w}
						for i := range sa.class {
							sa.class[i] = 1
						}
						apps[app] = sa
						wantChange = true
					} else {
						moved := sa.tenant != resolved
						old := sa.weight
						if !sa.explicit {
							sa.weight = w
						}
						sa.tenant = resolved
						wantChange = moved || old != sa.weight
					}
				}
				err := tree.Bind(app, tname, w)
				if (err != nil) != wantErr {
					t.Fatalf("Bind(%q, %q, %v): err=%v, want error=%v", app, tname, w, err, wantErr)
				}
			case 2: // SetAppWeight
				wantErr = !validWeight(w)
				if !wantErr {
					sa := apps[app]
					if sa == nil {
						sa = ensureShadow(app)
						sa.weight = w
						wantChange = true
					} else if sa.weight != w {
						sa.weight = w
						wantChange = true
					}
					sa.explicit = true
				}
				err := tree.SetAppWeight(app, w)
				if (err != nil) != wantErr {
					t.Fatalf("SetAppWeight(%q, %v): err=%v, want error=%v", app, w, err, wantErr)
				}
			case 3: // SetClassWeight
				class := iosched.Class(int(b>>2) % iosched.NumClasses)
				wantErr = !validWeight(w)
				if !wantErr {
					// Auto-binding an unknown app records a "bind"
					// transition even if the multiplier is a no-op.
					wasKnown := apps[app] != nil
					sa := ensureShadow(app)
					wantChange = !wasKnown || sa.class[class] != w
					sa.class[class] = w
				}
				err := tree.SetClassWeight(app, class, w)
				if (err != nil) != wantErr {
					t.Fatalf("SetClassWeight(%q, %v, %v): err=%v, want error=%v", app, class, w, err, wantErr)
				}
			}
			epoch := tree.Epoch()
			if epoch < lastEpoch {
				t.Fatalf("epoch regressed: %d after %d", epoch, lastEpoch)
			}
			if wantChange && epoch == lastEpoch {
				t.Fatalf("mutation changed state but epoch stayed at %d", epoch)
			}
			if !wantChange && epoch != lastEpoch {
				t.Fatalf("no-op mutation bumped epoch %d -> %d", lastEpoch, epoch)
			}
			lastEpoch = epoch
		}

		// The tree and the shadow model must agree on every resolved
		// weight, bit for bit (the product is computed in the same
		// order: tenant × app × class).
		for app, sa := range apps {
			if got := tree.TenantOf(app); got != sa.tenant {
				t.Fatalf("app %q tenant %q, want %q", app, got, sa.tenant)
			}
			if got := tree.AppWeight(app); got != sa.weight {
				t.Fatalf("app %q weight %v, want %v", app, got, sa.weight)
			}
			for c := 0; c < iosched.NumClasses; c++ {
				got, _ := tree.EffectiveWeight(app, iosched.Class(c))
				want := tenants[sa.tenant] * sa.weight * sa.class[c]
				if got != want {
					t.Fatalf("app %q class %d effective weight %v, want %v", app, c, got, want)
				}
			}
		}
		for name, w := range tenants {
			if got := tree.TenantWeight(name); got != w {
				t.Fatalf("tenant %q weight %v, want %v", name, got, w)
			}
		}
	})
}
