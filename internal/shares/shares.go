// Package shares is the runtime control plane for I/O weights: a
// cluster-wide share tree (tenant → application → I/O class) with
// epoch-versioned effective-weight resolution.
//
// The seed reproduction froze every weight at build time — JobSpec
// carried a scalar that was copied into each iosched.Request at
// submission. The tree inverts that flow: requests carry a reference
// to the tree and schedulers resolve the effective weight when they
// compute start/finish tags, so a weight change made mid-run takes
// effect on the very next tag, cluster-wide, without re-submitting
// anything.
//
// Semantics:
//
//   - Every application belongs to exactly one tenant. Applications
//     never explicitly bound to a tenant get an implicit singleton
//     tenant of weight 1 named after them, which makes the effective
//     weight bit-identical to the flat scalar it replaces
//     (1 × w × 1 == w in IEEE arithmetic).
//   - The effective weight of (app, class) is
//     tenantWeight × appWeight × classMultiplier; class multipliers
//     default to 1 and let an operator deprioritize, say, intermediate
//     spills relative to persistent reads of the same application.
//   - Every mutation bumps a global epoch. Schedulers stamp the epoch
//     they resolved against onto the request, the broker piggybacks
//     the current epoch on coordination exchanges, and the audit layer
//     opens a bounded reconvergence window around each weight change —
//     together these make a live reweight observable and checkable end
//     to end.
//
// The tree is not safe for concurrent use; the simulation is
// single-threaded by construction.
package shares

import (
	"fmt"
	"math"
	"sort"

	"ibis/internal/iosched"
)

// ImplicitTenant names the singleton tenant an unbound application is
// attributed to. The "~" prefix is reserved: explicit tenants may not
// use it, so implicit tenants can never collide with declared ones.
func ImplicitTenant(app iosched.AppID) string { return "~" + string(app) }

// Transition records one control-plane mutation, for the epoch log
// exposed through the public API and stamped into traces.
type Transition struct {
	// Time is the virtual time of the mutation (0 before a clock is
	// attached).
	Time float64
	// Epoch is the tree epoch after the mutation.
	Epoch uint64
	// Kind is the mutation type: "tenant", "bind", "app-weight",
	// "class-weight".
	Kind string
	// Tenant and App locate the mutated node (either may be empty).
	Tenant string
	App    iosched.AppID
	// Old and New are the mutated weight's values (Old is 0 for a
	// first bind).
	Old, New float64
}

type tenantNode struct {
	weight float64
}

type appNode struct {
	tenant string
	weight float64
	class  [iosched.NumClasses]float64 // multipliers, default 1
	// explicit marks a weight set through SetAppWeight (the control
	// plane); later re-binds (e.g. a Hive stage resubmitting the same
	// app id) no longer override it.
	explicit bool
}

// Tree is the share tree. The zero value is not usable; call NewTree.
type Tree struct {
	clock   func() float64
	tenants map[string]*tenantNode
	apps    map[iosched.AppID]*appNode
	epoch   uint64
	log     []Transition
	// onChange observers fire on mutations that changed an existing
	// effective weight (not on first binds — a brand-new flow has no
	// scheduling history to reconverge).
	onChange []func(Transition)
}

// NewTree creates an empty share tree at epoch 0.
func NewTree() *Tree {
	return &Tree{
		tenants: make(map[string]*tenantNode),
		apps:    make(map[iosched.AppID]*appNode),
	}
}

// SetClock attaches the virtual-time source used to stamp transitions
// (typically sim.Engine.Now).
func (t *Tree) SetClock(clock func() float64) { t.clock = clock }

// OnChange registers an observer fired after every mutation that
// changed the effective weight of at least one already-bound
// application (audit and trace wire in here). First binds do not fire.
func (t *Tree) OnChange(fn func(Transition)) { t.onChange = append(t.onChange, fn) }

// Epoch returns the current tree version. It increments on every
// mutation, including first binds.
func (t *Tree) Epoch() uint64 { return t.epoch }

// Transitions returns a copy of the mutation log.
func (t *Tree) Transitions() []Transition {
	out := make([]Transition, len(t.log))
	copy(out, t.log)
	return out
}

func (t *Tree) now() float64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

func validWeight(w float64) bool { return w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) }

// record bumps the epoch, appends to the log, and (when notify is
// set) tells observers an existing effective weight changed.
func (t *Tree) record(kind, tenant string, app iosched.AppID, old, new float64, notify bool) {
	t.epoch++
	tr := Transition{Time: t.now(), Epoch: t.epoch, Kind: kind, Tenant: tenant, App: app, Old: old, New: new}
	t.log = append(t.log, tr)
	if notify {
		for _, fn := range t.onChange {
			fn(tr)
		}
	}
}

// Tenant declares a tenant or updates its weight. Tenant names starting
// with "~" are reserved for the implicit singletons.
func (t *Tree) Tenant(name string, weight float64) error {
	if name == "" {
		return fmt.Errorf("shares: tenant name must be non-empty")
	}
	if name[0] == '~' {
		return fmt.Errorf("shares: tenant name %q is reserved (implicit-tenant prefix)", name)
	}
	if !validWeight(weight) {
		return fmt.Errorf("shares: tenant %q weight must be positive and finite, got %g", name, weight)
	}
	tn := t.tenants[name]
	if tn == nil {
		t.tenants[name] = &tenantNode{weight: weight}
		t.record("tenant", name, "", 0, weight, false)
		return nil
	}
	if tn.weight == weight {
		return nil
	}
	old := tn.weight
	tn.weight = weight
	t.record("tenant", name, "", old, weight, true)
	return nil
}

// TenantWeight returns a declared tenant's weight (implicit tenants
// report 1; unknown explicit tenants report 0).
func (t *Tree) TenantWeight(name string) float64 {
	if tn := t.tenants[name]; tn != nil {
		return tn.weight
	}
	if name != "" && name[0] == '~' {
		return 1
	}
	return 0
}

// ensureTenant resolves a binding's tenant name, creating implicit or
// auto-declared tenants as needed. An empty name means "the app's
// implicit singleton tenant".
func (t *Tree) ensureTenant(name string, app iosched.AppID) (string, error) {
	if name == "" {
		name = ImplicitTenant(app)
	} else if name[0] == '~' {
		return "", fmt.Errorf("shares: tenant name %q is reserved (implicit-tenant prefix)", name)
	}
	if t.tenants[name] == nil {
		// Auto-declare at weight 1; an explicit Tenant() call can
		// re-weight it at any time.
		t.tenants[name] = &tenantNode{weight: 1}
	}
	return name, nil
}

// Bind attributes an application to a tenant with the given weight.
// An empty tenant name binds the app to its implicit singleton tenant
// (weight 1), reproducing flat per-app weights exactly. Re-binding an
// existing app moves it between tenants and updates its weight —
// unless the weight was pinned by SetAppWeight, in which case the
// control-plane value wins and only the tenant move applies. Jobs and
// queries bind at submission; this is how mapreduce and hive attribute
// work to tenants.
func (t *Tree) Bind(app iosched.AppID, tenant string, weight float64) error {
	if app == "" {
		return fmt.Errorf("shares: bind with empty app id")
	}
	if !validWeight(weight) {
		return fmt.Errorf("shares: app %q weight must be positive and finite, got %g", app, weight)
	}
	tname, err := t.ensureTenant(tenant, app)
	if err != nil {
		return err
	}
	an := t.apps[app]
	if an == nil {
		an = &appNode{tenant: tname, weight: weight}
		for i := range an.class {
			an.class[i] = 1
		}
		t.apps[app] = an
		t.record("bind", tname, app, 0, weight, false)
		return nil
	}
	moved := an.tenant != tname
	old := an.weight
	if !an.explicit {
		an.weight = weight
	}
	if moved || old != an.weight {
		an.tenant = tname
		t.record("bind", tname, app, old, an.weight, true)
	}
	return nil
}

// SetAppWeight is the control plane's live reweight: it changes the
// application's weight effective at its next tag, cluster-wide, and
// pins it against later Bind overrides. Unknown apps are bound to
// their implicit tenant first.
func (t *Tree) SetAppWeight(app iosched.AppID, weight float64) error {
	if app == "" {
		return fmt.Errorf("shares: reweight with empty app id")
	}
	if !validWeight(weight) {
		return fmt.Errorf("shares: app %q weight must be positive and finite, got %g", app, weight)
	}
	an := t.apps[app]
	if an == nil {
		if err := t.Bind(app, "", weight); err != nil {
			return err
		}
		t.apps[app].explicit = true
		return nil
	}
	an.explicit = true
	if an.weight == weight {
		return nil
	}
	old := an.weight
	an.weight = weight
	t.record("app-weight", an.tenant, app, old, weight, true)
	return nil
}

// SetClassWeight sets the application's per-class multiplier (default
// 1). Unknown apps are bound to their implicit tenant at weight 1.
func (t *Tree) SetClassWeight(app iosched.AppID, class iosched.Class, mult float64) error {
	if class < 0 || int(class) >= iosched.NumClasses {
		return fmt.Errorf("shares: unknown class %d", int(class))
	}
	if !validWeight(mult) {
		return fmt.Errorf("shares: app %q class %s multiplier must be positive and finite, got %g", app, class, mult)
	}
	an, err := t.ensure(app)
	if err != nil {
		return err
	}
	if an.class[class] == mult {
		return nil
	}
	old := an.class[class]
	an.class[class] = mult
	t.record("class-weight", an.tenant, app, old, mult, true)
	return nil
}

// ensure auto-binds an unknown app to its implicit singleton tenant at
// weight 1 — the back-compat default for requests constructed outside
// the job frameworks.
func (t *Tree) ensure(app iosched.AppID) (*appNode, error) {
	if an := t.apps[app]; an != nil {
		return an, nil
	}
	if err := t.Bind(app, "", 1); err != nil {
		return nil, err
	}
	return t.apps[app], nil
}

// EffectiveWeight implements iosched.WeightSource: the weight a
// scheduler uses when tagging a request of (app, class), plus the
// epoch it was resolved at. Unknown apps auto-bind at weight 1 under
// their implicit tenant. For default bindings the result is
// bit-identical to the app weight (1 × w × 1 == w).
func (t *Tree) EffectiveWeight(app iosched.AppID, class iosched.Class) (float64, uint64) {
	an := t.apps[app]
	if an == nil {
		var err error
		an, err = t.ensure(app)
		if err != nil {
			return 0, t.epoch
		}
	}
	if class < 0 || int(class) >= iosched.NumClasses {
		return 0, t.epoch
	}
	return t.tenants[an.tenant].weight * an.weight * an.class[class], t.epoch
}

var _ iosched.WeightSource = (*Tree)(nil)

// TenantOf returns the tenant an application belongs to, auto-binding
// unknown apps to their implicit singleton tenant.
func (t *Tree) TenantOf(app iosched.AppID) string {
	an, err := t.ensure(app)
	if err != nil {
		return ImplicitTenant(app)
	}
	return an.tenant
}

// AppWeight returns the app's own weight factor (0 if unbound).
func (t *Tree) AppWeight(app iosched.AppID) float64 {
	if an := t.apps[app]; an != nil {
		return an.weight
	}
	return 0
}

// Tenants returns the declared and implicit tenant names, sorted.
func (t *Tree) Tenants() []string {
	out := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AppsOf returns the applications bound to a tenant, sorted.
func (t *Tree) AppsOf(tenant string) []iosched.AppID {
	var out []iosched.AppID
	for app, an := range t.apps {
		if an.tenant == tenant {
			out = append(out, app)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apps returns all bound applications, sorted.
func (t *Tree) Apps() []iosched.AppID {
	out := make([]iosched.AppID, 0, len(t.apps))
	for app := range t.apps {
		out = append(out, app)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
